// Package odbscale reproduces "Scaling and Characterizing Database
// Workloads: Bridging the Gap between Research and Practice" (MICRO 2003)
// as a simulation study: a TPC-C-like OLTP engine (ODB) over a buffer
// cache, disk array, OS scheduler, multi-level cache hierarchy with MESI
// coherence and a shared front-side bus, together with the paper's
// analytical contributions — the iron law of database performance and
// the piecewise-linear pivot-point scaling model.
//
// The package is a facade: it re-exports the stable surface of the
// internal packages so downstream users need a single import.
//
// Quick start:
//
//	cfg := odbscale.DefaultConfig(100, 32, 4) // warehouses, clients, CPUs
//	m, err := odbscale.Run(cfg)
//	// m.TPS, m.IPX, m.CPI, m.MPI, m.Breakdown, ...
//
// Campaigns — warehouse × processor sweeps with ≥90%-utilization client
// tuning — run through a context-aware scheduler with checkpoint/resume
// and progress observation:
//
//	spec := odbscale.DefaultCampaignSpec(odbscale.StandardWarehouses, []int{1, 2, 4})
//	spec.CheckpointPath = "campaign.json" // interrupted campaigns resume
//	spec.Resume = true
//	spec.Observer = odbscale.NewCampaignProgress(os.Stderr, len(spec.Warehouses)*len(spec.Processors))
//	res, err := odbscale.RunCampaign(ctx, spec)
//	set := odbscale.SweepSetFromCampaign(res)
//	char, err := set.Characterize(4) // pivot points, extrapolation
//
// The legacy Options.CollectSweeps surface remains as a thin wrapper
// over the same runner.
package odbscale

import (
	"context"
	"io"

	"odbscale/internal/campaign"
	"odbscale/internal/core"
	"odbscale/internal/experiment"
	"odbscale/internal/odb"
	"odbscale/internal/perfmon"
	"odbscale/internal/profile"
	"odbscale/internal/stats"
	"odbscale/internal/system"
	"odbscale/internal/telemetry"
	"odbscale/internal/txtrace"
	"odbscale/internal/xrand"
)

// Configuration and measurement of a single OLTP setup.
type (
	// Config describes one simulated configuration: workload size
	// (warehouses, clients), system size (processors), platform and
	// tuning constants.
	Config = system.Config
	// MachineConfig is the hardware platform description.
	MachineConfig = system.MachineConfig
	// Tuning holds the software-model calibration constants.
	Tuning = system.Tuning
	// Metrics is everything one run measures: throughput, IPX, CPI, MPI
	// (with user/OS splits), disk and bus behaviour, context switches.
	Metrics = system.Metrics
)

// Option attaches an optional observer (trace capture, flight recorder,
// EMON sampler, cycle profiler) to a Run.
type Option = system.Option

// Run executes one configuration through warm-up and measurement. It is
// the single run entry point: cancellation of ctx stops the simulation's
// drive loop and returns the context's error (nil ctx means Background),
// and options attach observers:
//
//	m, err := odbscale.Run(ctx, cfg, odbscale.WithRecorder(rec))
func Run(ctx context.Context, cfg Config, opts ...Option) (Metrics, error) {
	return system.Run(ctx, cfg, opts...)
}

// WithTrace captures every measured memory reference to w in the trace
// format; a non-nil count receives the record total.
func WithTrace(w io.Writer, count *uint64) Option { return system.WithTrace(w, count) }

// WithRecorder feeds the flight recorder during the run.
func WithRecorder(rec *Recorder) Option { return system.WithRecorder(rec) }

// WithEMON samples the performance counters with the EMON schedule; a
// non-nil results receives the per-event observations.
func WithEMON(cfg EMONConfig, results *[]EMONResult) Option {
	return system.WithEMON(cfg, results)
}

// WithProfiler feeds the cycle-attribution profiler during the run.
func WithProfiler(prof *ProfileCollector) Option { return system.WithProfiler(prof) }

// WithSpans feeds the per-transaction span tracer during the run: a
// deterministic sample of transactions (head sampling plus the K
// slowest per type) is retained as span trees whose wait-state
// decomposition sums exactly to each transaction's measured latency.
func WithSpans(tr *SpanTracer) Option { return system.WithSpans(tr) }

// RunContext executes one configuration, honouring the context.
//
// Deprecated: RunContext is Run(ctx, cfg); use Run.
func RunContext(ctx context.Context, cfg Config) (Metrics, error) {
	return system.Run(ctx, cfg)
}

// Run observers.
type (
	// Recorder is the flight recorder: latency histograms, timeline
	// samples and phase marks collected during a run.
	Recorder = telemetry.Recorder
	// RecorderConfig parameterizes the flight recorder.
	RecorderConfig = telemetry.Config
	// ProfileCollector accumulates the cycle-attribution profile of a
	// run.
	ProfileCollector = profile.Collector
	// Profile is a finalized cycle-attribution profile.
	Profile = profile.Profile
	// SpanTracer retains sampled per-transaction span trees during a
	// run.
	SpanTracer = txtrace.Tracer
	// SpanConfig parameterizes span sampling (head rate, head capacity,
	// tail reservoir size).
	SpanConfig = txtrace.Config
	// SpanDump is a tracer's serializable snapshot: run identity,
	// per-type wait-state aggregates, and the retained traces.
	SpanDump = txtrace.Dump
)

// NewRecorder builds a flight recorder for WithRecorder.
func NewRecorder(cfg RecorderConfig) *Recorder { return telemetry.NewRecorder(cfg) }

// NewProfileCollector builds a collector for WithProfiler; read the
// profile with its Profile method after the run.
func NewProfileCollector() *ProfileCollector { return profile.NewCollector() }

// NewSpanTracer builds a span tracer for WithSpans; snapshot the
// retained traces with its Dump method after the run.
func NewSpanTracer(cfg SpanConfig) *SpanTracer { return txtrace.NewTracer(cfg) }

// Sentinel configuration errors, matched with errors.Is.
var (
	// ErrBadConfig reports a non-positive warehouse, client or processor
	// count.
	ErrBadConfig = system.ErrBadConfig
	// ErrNoTxns reports a configuration without a positive MeasureTxns.
	ErrNoTxns = system.ErrNoTxns
)

// DefaultConfig returns a ready-to-run configuration of the paper's Xeon
// platform with the given warehouses, clients and processors.
func DefaultConfig(warehouses, clients, processors int) Config {
	return system.DefaultConfig(warehouses, clients, processors)
}

// XeonQuad returns the paper's experimental platform: 4-way 1.6 GHz Xeon
// MP, 1 MB L3 per processor, shared FSB, 26 disks, 2.8 GB buffer cache.
func XeonQuad() MachineConfig { return system.XeonQuad() }

// Itanium2Quad returns the Section 6.3 validation platform: 3 MB L3,
// ~1.5x bus bandwidth, more disks and memory.
func Itanium2Quad() MachineConfig { return system.Itanium2Quad() }

// DefaultTuning returns the calibrated model constants.
func DefaultTuning() Tuning { return system.DefaultTuning() }

// HeuristicClients estimates a client count for ≥90% utilization without
// running the tuner.
func HeuristicClients(warehouses, processors int) int {
	return system.HeuristicClients(warehouses, processors)
}

// The paper's analytical contribution.
type (
	// IronLaw is the iron law of database performance:
	// TPS = util × P × F / (IPX × CPI).
	IronLaw = core.IronLaw
	// Characterization bundles the two-region CPI(W) and MPI(W) fits and
	// their pivot points for one processor configuration.
	Characterization = core.Characterization
	// ScalingFit is one metric's two-region fit.
	ScalingFit = core.ScalingFit
)

// Characterize fits the two-region scaling model to CPI(W) and MPI(W)
// series (sorted by warehouses).
func Characterize(processors int, cpi, mpi Series) (Characterization, error) {
	return core.Characterize(processors, cpi, mpi)
}

// Speedup returns the throughput ratio of two iron-law operating points.
func Speedup(after, before IronLaw) float64 { return core.Speedup(after, before) }

// Campaigns: sweeps, tuning and figure assembly.
type (
	// Options configures a measurement campaign (platform, measurement
	// lengths, the ≥90%-utilization client tuner, parallelism).
	Options = experiment.Options
	// SweepSet holds a full warehouse × processor campaign.
	SweepSet = experiment.SweepSet
)

// The campaign runner: context-aware scheduling of every run in a
// campaign (measurement points and tuner probes) on one bounded pool,
// with probe memoization, checkpoint/resume and progress events.
type (
	// CampaignSpec describes one campaign: axes, tuning policy,
	// parallelism, checkpointing and observation.
	CampaignSpec = campaign.Spec
	// CampaignResult holds a completed campaign's per-point metrics.
	CampaignResult = campaign.Result
	// CampaignObserver receives PointStarted / PointFinished /
	// TunerProbe / CampaignDone events.
	CampaignObserver = campaign.Observer
	// CampaignPoint identifies one measurement configuration.
	CampaignPoint = campaign.Point
	// CampaignPointResult carries a finished point's metrics and timing.
	CampaignPointResult = campaign.PointResult
	// CampaignProbe is one client-tuner utilization measurement.
	CampaignProbe = campaign.Probe
	// CampaignSummary closes a campaign with its run accounting.
	CampaignSummary = campaign.Summary
	// CampaignCheckpoint is the serialized resumable campaign state.
	CampaignCheckpoint = campaign.Checkpoint
)

// RunCampaign executes a campaign specification: every measurement
// point and tuner probe is scheduled on one bounded worker pool,
// completed work persists to spec.CheckpointPath (when set), and
// cancellation of ctx stops the campaign with the checkpoint intact.
func RunCampaign(ctx context.Context, spec CampaignSpec) (*CampaignResult, error) {
	return campaign.Run(ctx, spec)
}

// DefaultCampaignSpec returns the paper-equivalent campaign over the
// given warehouse and processor axes (auto-tuned clients, warm-started
// probes); customize CheckpointPath, Resume and Observer on the result.
func DefaultCampaignSpec(ws, ps []int) CampaignSpec {
	return experiment.Defaults().CampaignSpec(ws, ps)
}

// SweepSetFromCampaign arranges a campaign result into the SweepSet
// container the figure and table assemblers consume.
func SweepSetFromCampaign(res *CampaignResult) *SweepSet {
	return experiment.SweepSetFrom(res)
}

// NewCampaignProgress returns an observer rendering a live one-line
// progress display on w (typically os.Stderr).
func NewCampaignProgress(w io.Writer, totalPoints int) CampaignObserver {
	return campaign.NewProgress(w, totalPoints)
}

// NewCampaignEventLog returns an observer appending one JSON line per
// campaign event to w — a machine-readable campaign journal.
func NewCampaignEventLog(w io.Writer) CampaignObserver {
	return campaign.NewEventLog(w)
}

// CampaignObservers fans events out to several observers in order.
func CampaignObservers(obs ...CampaignObserver) CampaignObserver {
	return campaign.Observers(obs...)
}

// DefaultOptions returns the paper-equivalent campaign settings.
func DefaultOptions() Options { return experiment.Defaults() }

// Replication summarizes repeated measurements under different seeds.
type Replication = experiment.Replication

// Replicate runs one configuration n times with consecutive seeds —
// concurrently, through the campaign worker pool — and summarizes the
// run-to-run spread of the headline metrics.
func Replicate(cfg Config, n int) (Replication, error) {
	return experiment.Replicate(cfg, n)
}

// ReplicateContext is Replicate under a context.
func ReplicateContext(ctx context.Context, cfg Config, n int) (Replication, error) {
	return experiment.ReplicateContext(ctx, cfg, n)
}

// StandardWarehouses is the warehouse axis used by the paper's figures.
var StandardWarehouses = experiment.StandardWarehouses

// StandardProcessors are the paper's processor configurations {1, 2, 4}.
var StandardProcessors = experiment.StandardProcessors

// Data containers.
type (
	// Series is an (x, y) series, x being the warehouse count.
	Series = stats.Series
	// Table is an aligned text table in the style of the paper's tables.
	Table = stats.Table
	// Chart renders series as a text line chart.
	Chart = stats.Chart
)

// RenderSeries formats figure series as an aligned text table.
func RenderSeries(title string, series []Series, decimals int) string {
	return experiment.RenderSeries(title, series, decimals)
}

// EMON-style performance-counter sampling (the paper's measurement
// methodology: grouped events, round-robin windows, repeated rotations).
type (
	// EMONConfig is the sampling schedule.
	EMONConfig = perfmon.Config
	// EMONEvent identifies a Table 2 performance-monitoring event.
	EMONEvent = perfmon.Event
	// EMONResult is one event's repeated rate observations.
	EMONResult = perfmon.Result
)

// DefaultEMONConfig mirrors the paper's schedule at the given clock:
// ten-second windows, six rotations.
func DefaultEMONConfig(cyclesPerSecond float64) EMONConfig {
	return perfmon.DefaultConfig(cyclesPerSecond)
}

// RunEMON executes a configuration while sampling its performance
// counters with the EMON schedule, returning both the exact metrics and
// the sampled observations (with their sampling error).
//
// Deprecated: RunEMON is Run with WithEMON; use Run.
func RunEMON(cfg Config, emon EMONConfig) (Metrics, []EMONResult, error) {
	var results []EMONResult
	m, err := system.Run(context.Background(), cfg, system.WithEMON(emon, &results))
	return m, results, err
}

// EMONEvents returns the Table 2 events in order.
func EMONEvents() []EMONEvent { return perfmon.Events() }

// EMONEventInfo returns an event's Table 2 row (alias, EMON event name,
// description).
func EMONEventInfo(e EMONEvent) (alias, emonEvent, description string) {
	d := perfmon.Table2[e]
	return d.Alias, d.EMONEvent, d.Description
}

// The functional (payload-mode) engine: a small-scale working database
// with real pages, write-ahead redo logging and crash recovery, built on
// the same schema, layout and buffer cache as the simulation.
type (
	// Layout maps the ODB schema onto the block address space for a
	// given warehouse count.
	Layout = odb.Layout
	// FunctionalStore executes row-level transaction effects on real
	// pages and supports Checkpoint, Crash and Recover.
	FunctionalStore = odb.Store
	// TxnGenerator produces ODB transaction programs (the five
	// transaction types in the standard mix).
	TxnGenerator = odb.Generator
	// Txn is one generated transaction instance.
	Txn = odb.Txn
)

// TableID identifies an ODB table or index.
type TableID = odb.TableID

// The ODB schema's heap tables (indices are internal to the engine).
const (
	TableWarehouse = odb.TableWarehouse
	TableDistrict  = odb.TableDistrict
	TableCustomer  = odb.TableCustomer
	TableStock     = odb.TableStock
	TableItem      = odb.TableItem
)

// NewLayout lays out the ODB database for w warehouses.
func NewLayout(warehouses int) *Layout { return odb.NewLayout(warehouses) }

// NewFunctionalStore builds a payload-mode store over the layout with a
// buffer cache of the given block capacity.
func NewFunctionalStore(l *Layout, cacheBlocks int) *FunctionalStore {
	return odb.NewStore(l, cacheBlocks)
}

// NewTxnGenerator builds a deterministic transaction generator.
func NewTxnGenerator(l *Layout, seed int64) *TxnGenerator {
	return odb.NewGenerator(l, xrand.New(seed))
}
