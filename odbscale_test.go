package odbscale_test

import (
	"bytes"
	"context"
	"errors"
	"math"
	"path/filepath"
	"testing"

	"odbscale"
)

// TestPublicAPIQuickstart exercises the documented entry points end to
// end: run a configuration, check the iron law, fit a characterization.
func TestPublicAPIQuickstart(t *testing.T) {
	cfg := odbscale.DefaultConfig(40, 12, 2)
	cfg.WarmupTxns = 200
	cfg.MeasureTxns = 500
	m, err := odbscale.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	law := odbscale.IronLaw{
		Processors:  m.Processors,
		FrequencyHz: cfg.Machine.FreqHz,
		IPX:         m.IPX,
		CPI:         m.CPI,
		Utilization: m.CPUUtil,
	}
	if err := law.Verify(m.TPS, 0.02); err != nil {
		t.Fatal(err)
	}
}

// TestPublicCampaign drives the documented campaign surface: spec from
// the facade, checkpointing, progress and event-log observers, resume,
// and the sweep-set bridge into the figure assemblers.
func TestPublicCampaign(t *testing.T) {
	spec := odbscale.DefaultCampaignSpec([]int{10, 25}, []int{1})
	spec.AutoTune = false // heuristic clients keep the test quick
	spec.WarmupTxns = 100
	spec.MeasureTxns = 300
	spec.CheckpointPath = filepath.Join(t.TempDir(), "campaign.json")
	var progress, events bytes.Buffer
	spec.Observer = odbscale.CampaignObservers(
		odbscale.NewCampaignProgress(&progress, 2),
		odbscale.NewCampaignEventLog(&events),
	)
	res, err := odbscale.RunCampaign(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Runs != 2 || res.Summary.Points != 2 {
		t.Fatalf("summary = %+v, want 2 runs over 2 points", res.Summary)
	}
	if progress.Len() == 0 || events.Len() == 0 {
		t.Fatal("observers produced no output")
	}
	set := odbscale.SweepSetFromCampaign(res)
	if len(set.ByP[1]) != 2 {
		t.Fatalf("sweep set has %d points", len(set.ByP[1]))
	}

	// A second run resumes every point from the checkpoint: zero runs.
	spec.Resume = true
	spec.Observer = nil
	res, err = odbscale.RunCampaign(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.Runs != 0 || res.Summary.PointsResumed != 2 {
		t.Fatalf("resume summary = %+v, want everything restored", res.Summary)
	}
}

func TestPublicSentinelErrors(t *testing.T) {
	_, err := odbscale.Run(context.Background(), odbscale.Config{})
	if !errors.Is(err, odbscale.ErrBadConfig) {
		t.Fatalf("err = %v, want ErrBadConfig", err)
	}
	cfg := odbscale.DefaultConfig(10, 8, 1)
	cfg.MeasureTxns = 0
	if _, err := odbscale.Run(context.Background(), cfg); !errors.Is(err, odbscale.ErrNoTxns) {
		t.Fatalf("err = %v, want ErrNoTxns", err)
	}
}

func TestPublicPresets(t *testing.T) {
	x := odbscale.XeonQuad()
	i := odbscale.Itanium2Quad()
	if x.Geometry.L3Size >= i.Geometry.L3Size {
		t.Fatal("Itanium2 must have the larger L3")
	}
	if odbscale.HeuristicClients(800, 4) <= odbscale.HeuristicClients(10, 4) {
		t.Fatal("heuristic not increasing")
	}
	if len(odbscale.StandardWarehouses) < 8 || len(odbscale.StandardProcessors) != 3 {
		t.Fatal("standard axes wrong")
	}
}

func TestPublicCharacterize(t *testing.T) {
	var cpi, mpi odbscale.Series
	for _, w := range []float64{10, 50, 100, 200, 400, 800} {
		// Two-region synthetic data with a pivot near 120.
		if w <= 120 {
			cpi.Add(w, 2+0.02*w)
			mpi.Add(w, 0.004+0.00005*w)
		} else {
			cpi.Add(w, 2+0.02*120+0.001*(w-120))
			mpi.Add(w, 0.004+0.00005*120+0.000002*(w-120))
		}
	}
	c, err := odbscale.Characterize(4, cpi, mpi)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.RepresentativePivot()-120) > 30 {
		t.Fatalf("pivot = %v, want ~120", c.RepresentativePivot())
	}
	if out := odbscale.RenderSeries("CPI", []odbscale.Series{cpi}, 2); out == "" {
		t.Fatal("empty render")
	}
}

func TestPublicSpeedup(t *testing.T) {
	a := odbscale.IronLaw{Processors: 4, FrequencyHz: 1e9, IPX: 1e6, CPI: 4, Utilization: 1}
	b := odbscale.IronLaw{Processors: 1, FrequencyHz: 1e9, IPX: 1e6, CPI: 4, Utilization: 1}
	if got := odbscale.Speedup(a, b); got != 4 {
		t.Fatalf("Speedup = %v", got)
	}
}

func TestPublicEMONAndFunctionalStore(t *testing.T) {
	cfg := odbscale.DefaultConfig(25, 10, 2)
	cfg.WarmupTxns = 150
	cfg.MeasureTxns = 400
	emon := odbscale.DefaultEMONConfig(cfg.Machine.FreqHz)
	emon.Window /= 200
	emon.Repeats = 3
	_, results, err := odbscale.RunEMON(cfg, emon)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 {
		t.Fatal("no EMON results")
	}
	if alias, name, desc := odbscale.EMONEventInfo(results[0].Event); alias == "" || name == "" || desc == "" {
		t.Fatal("incomplete event info")
	}
	if len(odbscale.EMONEvents()) != 9 {
		t.Fatal("want 9 Table 2 events")
	}

	layout := odbscale.NewLayout(2)
	store := odbscale.NewFunctionalStore(layout, 64)
	gen := odbscale.NewTxnGenerator(layout, 7)
	for i := 0; i < 300; i++ {
		store.ApplyTxn(gen.Next(i % 2))
	}
	var w, d int64
	for wh := 0; wh < 2; wh++ {
		w += store.Counter(odbscale.TableWarehouse, uint64(wh))
		for dd := 0; dd < 10; dd++ {
			d += store.Counter(odbscale.TableDistrict, uint64(wh*10+dd))
		}
	}
	if w == 0 || w != d {
		t.Fatalf("conservation violated: warehouse %d vs district %d", w, d)
	}
	store.Crash()
	store.Recover()
	var w2 int64
	for wh := 0; wh < 2; wh++ {
		w2 += store.Counter(odbscale.TableWarehouse, uint64(wh))
	}
	if w2 != w {
		t.Fatalf("recovery lost money: %d != %d", w2, w)
	}

	rep, err := odbscale.Replicate(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Runs) != 2 {
		t.Fatal("replication failed")
	}
}
