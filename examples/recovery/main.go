// Recovery demonstrates that the substrate under the simulation is a
// genuinely functional database engine: it executes the ODB transaction
// mix against real 8 KB pages through the buffer cache, writes redo ahead
// of data, survives a crash that destroys every buffered page, and
// recovers by replaying the log — verifying monetary conservation
// invariants before and after.
package main

import (
	"fmt"
	"log"

	"odbscale"
)

const warehouses = 3

func main() {
	layout := odbscale.NewLayout(warehouses)
	fmt.Printf("database: %d warehouses, %.0f MB across %d blocks\n",
		warehouses, layout.SizeMB(), layout.TotalBlocks())

	// A deliberately tiny buffer cache forces dirty evictions, so pages
	// constantly travel buffer -> disk image and back while running.
	store := odbscale.NewFunctionalStore(layout, 128)
	gen := odbscale.NewTxnGenerator(layout, 42)

	const txns = 5000
	for i := 0; i < txns; i++ {
		store.ApplyTxn(gen.Next(i % warehouses))
	}
	fmt.Printf("executed %d transactions, redo log holds %d records\n", txns, store.LogLen())

	before := conservation(store)
	fmt.Printf("before crash: warehouse YTD total = %d cents (== district YTD: %v)\n",
		before.warehouseYTD, before.warehouseYTD == before.districtYTD)
	if before.warehouseYTD != before.districtYTD {
		log.Fatal("conservation violated before crash")
	}

	// Take a mid-stream checkpoint, run more work, then crash: everything
	// buffered since the checkpoint is lost.
	store.Checkpoint()
	for i := 0; i < 1000; i++ {
		store.ApplyTxn(gen.Next(i % warehouses))
	}
	after := conservation(store)
	store.Crash()
	fmt.Println("crash: all buffered pages destroyed")

	applied := store.Recover()
	fmt.Printf("recovery replayed %d redo records\n", applied)

	recovered := conservation(store)
	if recovered != after {
		log.Fatalf("state after recovery %+v != state before crash %+v", recovered, after)
	}
	fmt.Printf("after recovery: warehouse YTD total = %d cents — identical to pre-crash state\n",
		recovered.warehouseYTD)

	// Idempotence: recovering again must change nothing.
	store.Crash()
	if again := store.Recover(); again != 0 {
		log.Fatalf("second recovery applied %d records, want 0", again)
	}
	fmt.Println("second recovery applied 0 records (LSNs make replay idempotent)")
}

type totals struct {
	warehouseYTD int64
	districtYTD  int64
}

func conservation(s *odbscale.FunctionalStore) totals {
	var t totals
	for w := 0; w < warehouses; w++ {
		t.warehouseYTD += s.Counter(odbscale.TableWarehouse, uint64(w))
		for d := 0; d < 10; d++ {
			t.districtYTD += s.Counter(odbscale.TableDistrict, uint64(w*10+d))
		}
	}
	return t
}
