// Pivotstudy applies the paper's central methodology: sweep the workload
// size, fit the two-region scaling model, find the pivot point, select
// the minimal representative configuration, and then *validate* the
// method by extrapolating CPI to a configuration far beyond the measured
// range and comparing against a direct simulation of that configuration.
//
// This is what the paper proposes researchers do: simulate at the pivot
// instead of at full production scale, and project the rest.
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"os"

	"odbscale"
)

func main() {
	opts := odbscale.DefaultOptions()
	opts.AutoTune = false // heuristic clients keep the example brisk
	opts.MeasureTxns = 2000

	ws := []int{10, 25, 50, 100, 150, 200, 300, 400, 500, 650, 800}
	const p = 4

	// The sweep runs as a campaign: one worker pool schedules every
	// point, a progress line tracks it live, and a checkpoint makes the
	// sweep resumable if interrupted (rerun to pick up where it left off).
	ctx := context.Background()
	spec := opts.CampaignSpec(ws, []int{p})
	spec.CheckpointPath = "pivotstudy.checkpoint.json"
	spec.Resume = true
	spec.Observer = odbscale.NewCampaignProgress(os.Stderr, len(ws))

	fmt.Printf("sweeping W=%v on %s (%dP)...\n", ws, opts.Machine.Name, p)
	res, err := odbscale.RunCampaign(ctx, spec)
	if err != nil {
		log.Fatal(err)
	}
	defer os.Remove(spec.CheckpointPath) // campaign complete: drop the checkpoint
	set := odbscale.SweepSetFromCampaign(res)

	char, err := set.Characterize(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncached region: %s\n", char.CPI.Fit.Cached)
	fmt.Printf("scaled region: %s\n", char.CPI.Fit.Scaled)
	fmt.Printf("CPI pivot: %.0f warehouses, MPI pivot: %.0f warehouses\n",
		char.CPI.Pivot(), char.MPI.Pivot())

	minimal := char.MinimalConfiguration(0.25)
	fmt.Printf("\nminimal representative configuration: %d warehouses\n", minimal)
	fmt.Println("(simulating configurations larger than this adds no new behaviour;")
	fmt.Println(" their CPI follows the scaled-region line)")

	// Validate: extrapolate to 1200 warehouses — 1.5x the largest
	// measured point, the size the paper itself could no longer hold at
	// 90% utilization — then actually simulate it.
	const target = 1200
	predicted := char.CPI.Extrapolate(target)
	fmt.Printf("\nextrapolated CPI at %dW: %.3f\n", target, predicted)

	cfg := odbscale.DefaultConfig(target, 64, p)
	cfg.MeasureTxns = 2000
	m, err := odbscale.Run(ctx, cfg)
	if err != nil {
		log.Fatal(err)
	}
	errPct := 100 * math.Abs(predicted-m.CPI) / m.CPI
	fmt.Printf("simulated CPI at %dW:    %.3f  (extrapolation error %.1f%%)\n",
		target, m.CPI, errPct)
	if errPct > 15 {
		log.Fatalf("extrapolation error %.1f%% exceeds 15%% — pivot method failed", errPct)
	}
	fmt.Println("\nthe pivot-point method predicted the out-of-range configuration;")
	fmt.Printf("a %dW simulation stands in for %dW and beyond.\n", minimal, target)
}
