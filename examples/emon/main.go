// Emon demonstrates the paper's measurement methodology on the live
// simulation: the machine's free-running performance counters are
// sampled in round-robin event groups (the Xeon's 18 counters come in 9
// pairs, so EMON cannot read everything at once), each group for a fixed
// window, the rotation repeated several times. The output shows the mean
// and 95% confidence interval of every Table 2 event — including the
// sampling noise the paper reports for rare events.
package main

import (
	"context"

	"fmt"
	"log"

	"odbscale"
)

func main() {
	cfg := odbscale.DefaultConfig(100, 32, 4)
	cfg.MeasureTxns = 2000

	// A compressed schedule (0.1 s windows, 6 rotations) keeps the run
	// short; the paper used 10 s windows over a 10-minute measurement.
	emon := odbscale.DefaultEMONConfig(cfg.Machine.FreqHz)
	emon.Window /= 100

	var results []odbscale.EMONResult
	m, err := odbscale.Run(context.Background(), cfg, odbscale.WithEMON(emon, &results))
	if err != nil {
		log.Fatal(err)
	}

	windows := 0
	for _, r := range results {
		if len(r.Samples) > windows {
			windows = len(r.Samples)
		}
	}
	fmt.Printf("sampled %d windows per event over %.2f simulated seconds\n\n",
		windows, m.ElapsedSeconds)
	fmt.Printf("%-22s %-26s %12s %12s\n", "event", "EMON name", "mean", "95% CI")
	for _, r := range results {
		alias, emonName, _ := odbscale.EMONEventInfo(r.Event)
		if len(r.Samples) == 0 {
			continue
		}
		fmt.Printf("%-22s %-26s %12.6f %12.6f\n", alias, emonName, r.Mean, r.CI95)
	}

	fmt.Println("\nexact bookkeeping for comparison:")
	fmt.Printf("  MPI        %0.6f\n", m.MPI)
	fmt.Printf("  mispred/PI %0.6f\n", m.Rates.BranchMispredPI)
	fmt.Printf("  bus time   %0.1f cycles\n", m.BusTime)
	fmt.Println("\nthe sampled means track the exact rates; the CIs show the")
	fmt.Println("round-robin sampling error the paper notes for rare events.")
}
