// Cmpdesign runs the design study the paper's introduction motivates:
// how would OLTP behave on chip multiprocessors? It sweeps the processor
// count and the L3 capacity at a fixed, representative workload size and
// reports throughput scaling, coherence traffic and bus pressure — the
// quantities behind the paper's conclusion that coherence is not the
// bottleneck, but cache capacity and bandwidth are.
package main

import (
	"context"

	"fmt"
	"log"

	"odbscale"
)

func main() {
	const w = 200 // beyond the pivot: scaled-setup behaviour
	fmt.Printf("CMP design study at %d warehouses (scaled setup)\n\n", w)

	fmt.Println("processor scaling on the stock platform (1 MB L3, shared FSB):")
	fmt.Println("P   clients  TPS    speedup  CPI    bus-util  coherence-share")
	var base float64
	for i, p := range []int{1, 2, 4, 8} {
		m := runPoint(w, p, 0)
		if i == 0 {
			base = m.TPS
		}
		fmt.Printf("%-3d %-8d %-6.0f %-8.2f %-6.2f %-9.2f %.4f\n",
			p, m.Clients, m.TPS, m.TPS/base, m.CPI, m.BusUtil, m.CoherenceShare)
	}
	fmt.Println("\nspeedup falls away from linear as the shared bus queues up, not")
	fmt.Println("because of coherence — exactly the paper's CMP argument.")

	fmt.Println("\nL3 capacity scaling at 4P:")
	fmt.Println("L3(MB)  TPS    CPI    MPI      L3-share-of-CPI")
	for _, mb := range []int{1, 2, 4, 8} {
		m := runPoint(w, 4, mb)
		fmt.Printf("%-7d %-6.0f %-6.2f %-8.4f %.2f\n",
			mb, m.TPS, m.CPI, m.MPI, m.Breakdown.L3/m.Breakdown.Total())
	}
	fmt.Println("\nadded capacity buys back most of the memory stall — the paper's")
	fmt.Println("closing recommendation: grow or better use the L3, don't chase")
	fmt.Println("coherence optimizations.")
}

func runPoint(w, p, l3MB int) odbscale.Metrics {
	c := odbscale.HeuristicClients(w, p)
	cfg := odbscale.DefaultConfig(w, c, p)
	cfg.MeasureTxns = 1500
	if l3MB > 0 {
		cfg.Machine.Geometry.L3Size = l3MB << 20
		if l3MB == 3 {
			cfg.Machine.Geometry.L3Ways = 12
		}
	}
	m, err := odbscale.Run(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	return m
}
