// Quickstart: simulate one OLTP configuration on the paper's Xeon
// platform and decompose its throughput with the iron law of database
// performance.
package main

import (
	"context"

	"fmt"
	"log"

	"odbscale"
)

func main() {
	// 100 warehouses, 32 clients, 4 processors — a mid-sized setup near
	// the cached-to-scaled transition.
	cfg := odbscale.DefaultConfig(100, 32, 4)
	m, err := odbscale.Run(context.Background(), cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("configuration: %d warehouses, %d clients, %d processors on %s\n",
		m.Warehouses, m.Clients, m.Processors, cfg.Machine.Name)
	fmt.Printf("throughput:    %.0f transactions/second (%.0f measured over %.2f s)\n",
		m.TPS, float64(m.Txns), m.ElapsedSeconds)

	law := odbscale.IronLaw{
		Processors:  m.Processors,
		FrequencyHz: cfg.Machine.FreqHz,
		IPX:         m.IPX,
		CPI:         m.CPI,
		Utilization: m.CPUUtil,
	}
	fmt.Printf("iron law:      %s\n", law)
	if err := law.Verify(m.TPS, 0.02); err != nil {
		log.Fatal(err)
	}
	fmt.Println("               (measured TPS satisfies the iron law)")

	fmt.Printf("path length:   IPX = %.2fM (user %.2fM + OS %.2fM)\n",
		m.IPX/1e6, m.UserIPX/1e6, m.OSIPX/1e6)
	fmt.Printf("cycle cost:    CPI = %.2f, of which L3 misses contribute %.0f%%\n",
		m.CPI, 100*m.Breakdown.L3/m.Breakdown.Total())
	fmt.Printf("memory:        L3 MPI = %.4f, buffer cache hit ratio = %.3f\n",
		m.MPI, m.BufferHitRatio)
	fmt.Printf("system:        CPU util = %.2f, ctx switches/txn = %.1f, read KB/txn = %.1f\n",
		m.CPUUtil, m.CtxSwitchPerTxn, m.ReadKBPerTxn)
	fmt.Printf("breakdown:     %s\n", m.Breakdown)
}
